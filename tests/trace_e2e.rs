//! End-to-end causal tracing: a real `imt-serve` session under
//! `IMT_OBS=trace` semantics, asserting that the manifest's trace section
//! yields a complete span tree — every request's root covers its
//! queue-wait, profile warm, encode and eval stages — and that the Chrome
//! export is schema-valid and time-ordered.
//!
//! All mode/env mutation lives in one `#[test]`: the trace rings, the
//! registry and `IMT_OBS_PATH` are process-global, and integration test
//! binaries run their `#[test]` fns on parallel threads. The randomized
//! sweep at the end (worker counts, request mixes, `par` fan-outs) drives
//! its cases through `proptest::test_runner::TestRng` inside the same fn
//! for the same reason.

use std::collections::{HashMap, HashSet};

use imt::obs;
use imt::obs::json::Json;
use imt::obs::trace::{self, TraceEvent, TraceKind};
use imt_serve::request::Request;
use imt_serve::service::{Service, ServiceConfig};
use proptest::TestRng;

/// Stage names every completed request's span tree must cover.
const REQUEST_STAGES: [&str; 5] = [
    "serve.queue_wait",
    "serve.warm",
    "serve.execute",
    "serve.encode",
    "serve.eval",
];

/// Asserts the structural invariants of a completed capture: every
/// parent link resolves to a recorded span in the same trace, children
/// start no earlier than their parent's start, and nothing was dropped.
fn assert_tree_sound(events: &[TraceEvent], dropped: u64, context: &str) {
    assert_eq!(dropped, 0, "{context}: ring dropped events");
    let spans: HashMap<u64, &TraceEvent> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Span)
        .map(|e| (e.span_id, e))
        .collect();
    for event in events {
        if event.parent_id == 0 {
            continue;
        }
        let parent = spans.get(&event.parent_id).unwrap_or_else(|| {
            panic!(
                "{context}: {} (span {}) has unresolvable parent {}",
                event.name, event.span_id, event.parent_id
            )
        });
        assert_eq!(
            parent.trace_id, event.trace_id,
            "{context}: {} parents across traces",
            event.name
        );
        assert!(
            event.start_ns >= parent.start_ns,
            "{context}: {} starts {} ns before its parent {}",
            event.name,
            parent.start_ns - event.start_ns,
            parent.name
        );
    }
}

/// The set of stage names reachable from `root` by parent links.
fn descendant_names(events: &[TraceEvent], root: &TraceEvent) -> HashSet<String> {
    let mut frontier: HashSet<u64> = HashSet::from([root.span_id]);
    let mut names = HashSet::new();
    // Spans are few per request; a fixpoint sweep beats building an index.
    loop {
        let mut grew = false;
        for event in events {
            if frontier.contains(&event.parent_id) && frontier.insert(event.span_id) {
                names.insert(event.name.clone());
                grew = true;
            }
        }
        if !grew {
            return names;
        }
    }
}

/// Runs `requests` through a fresh service and waits for every response.
fn drive_session(workers: usize, requests: Vec<Request>) {
    let service = Service::start(ServiceConfig::default().with_workers(workers));
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| service.submit(r).expect("queue accepts below capacity"))
        .collect();
    for ticket in tickets {
        let response = ticket.wait();
        response.outcome.expect("test-scale request completes");
    }
    service.shutdown();
}

#[test]
fn trace_mode_exports_a_complete_span_tree_per_request() {
    let dir = std::env::temp_dir().join(format!("imt_trace_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("IMT_OBS_PATH", &dir);
    obs::set_mode(obs::Mode::Trace);
    obs::registry::reset();
    obs::event::reset();
    trace::reset();

    // A mixed session: two kernels, two block sizes, across two workers.
    let config = imt::core::EncoderConfig::default();
    let k6 = config.with_block_size(6).expect("6 is a valid block size");
    let requests = vec![
        Request::new(imt::kernels::Kernel::Tri.test_spec(), config),
        Request::new(imt::kernels::Kernel::Tri.test_spec(), k6),
        Request::new(imt::kernels::Kernel::Fft.test_spec(), config),
    ];
    let expected_requests = requests.len();
    drive_session(2, requests);

    // A `par` fan-out under an ambient span: scoped workers must adopt
    // the spawning thread's context instead of becoming orphan roots.
    std::env::set_var("IMT_THREADS", "4");
    let ambient = trace::span("e2e.par_root");
    let ambient_span = ambient.ctx().expect("tracing is on").span_id;
    let out = imt::bitcode::par::par_map_range_coarse(8, 1, |i| i * 2);
    assert_eq!(out.len(), 8);
    drop(ambient);
    std::env::remove_var("IMT_THREADS");

    imt_bench::finish_run("trace-e2e");
    obs::set_mode(obs::Mode::Off);
    std::env::remove_var("IMT_OBS_PATH");

    let text = std::fs::read_to_string(dir.join("trace-e2e.json")).expect("manifest written");
    let doc = Json::parse(&text).expect("manifest parses");
    obs::manifest::validate(&doc).expect("manifest validates against imt-obs/v1");
    let section = doc.get("trace").expect("trace mode embeds a trace section");
    let (events, dropped) = trace::events_from_json(section).expect("trace section parses");
    assert_tree_sound(&events, dropped, "manifest");

    // Every submitted request produced a root whose tree covers all four
    // attributed stages (plus the execute envelope).
    let roots: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name == "serve.request" && e.parent_id == 0)
        .collect();
    assert_eq!(
        roots.len(),
        expected_requests,
        "one request root per submitted request"
    );
    for root in &roots {
        assert_eq!(root.kind, TraceKind::Span);
        assert!(root.dur_ns > 0, "the root closed with a real duration");
        let names = descendant_names(&events, root);
        for stage in REQUEST_STAGES {
            assert!(
                names.contains(stage),
                "request trace {} is missing stage {stage}; tree: {names:?}",
                root.trace_id
            );
        }
        assert!(
            names.contains("serve.respond"),
            "delivery instant missing from trace {}",
            root.trace_id
        );
    }
    // The fan-out workers parented under the ambient span, on their own
    // threads.
    let ambient_root = events
        .iter()
        .find(|e| e.span_id == ambient_span)
        .expect("ambient par span recorded");
    let par_workers: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name == "par.worker" && e.parent_id == ambient_span)
        .collect();
    assert!(
        !par_workers.is_empty(),
        "par.worker spans adopt the spawner's context"
    );
    assert!(par_workers.iter().all(|w| w.thread != ambient_root.thread));

    // The Chrome export round-trips: schema-valid, and timestamps are
    // monotonic within every (process, thread) lane.
    let chrome = trace::chrome_trace(&[("trace-e2e".to_string(), events)]);
    trace::validate_chrome(&chrome).expect("exporter emits valid Chrome trace JSON");
    let rows = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut timed_rows = 0;
    for row in rows {
        let Some(ts) = row.get("ts").and_then(Json::as_f64) else {
            continue; // process_name metadata rows carry no timestamp
        };
        let pid = row.get("pid").and_then(Json::as_u64).expect("pid");
        let tid = row.get("tid").and_then(Json::as_u64).expect("tid");
        let prev = last_ts.insert((pid, tid), ts).unwrap_or(f64::MIN);
        assert!(
            ts >= prev,
            "timestamps regress within thread {tid}: {prev} -> {ts}"
        );
        timed_rows += 1;
    }
    assert!(timed_rows > 0, "export contains timed events");

    // Randomized sweep: worker counts, request mixes and fan-out shapes
    // must all uphold the same structural invariants.
    for case in 0..4_u32 {
        let (mut rng, _seed) = TestRng::for_case("trace_e2e", case);
        obs::set_mode(obs::Mode::Trace);
        trace::reset();

        let workers = 1 + (rng.next_u64() % 3) as usize;
        let kernels = [
            imt::kernels::Kernel::Tri,
            imt::kernels::Kernel::Fft,
            imt::kernels::Kernel::Mmul,
        ];
        let n_requests = 1 + (rng.next_u64() % 4) as usize;
        let requests: Vec<Request> = (0..n_requests)
            .map(|_| {
                let kernel = kernels[(rng.next_u64() % kernels.len() as u64) as usize];
                let k = 4 + (rng.next_u64() % 3) as usize;
                let config = imt::core::EncoderConfig::default()
                    .with_block_size(k)
                    .expect("4..=6 are valid block sizes");
                Request::new(kernel.test_spec(), config)
            })
            .collect();
        drive_session(workers, requests);

        let threads = 1 << (rng.next_u64() % 3); // 1, 2 or 4
        std::env::set_var("IMT_THREADS", threads.to_string());
        let fanout = 2 + (rng.next_u64() % 7) as usize;
        {
            let _ambient = trace::span("e2e.case_root");
            let out = imt::bitcode::par::par_map_range_coarse(fanout, 1, |i| i + 1);
            assert_eq!(out.len(), fanout);
        }
        std::env::remove_var("IMT_THREADS");

        let (events, dropped) = trace::snapshot();
        obs::set_mode(obs::Mode::Off);
        assert_tree_sound(&events, dropped, &format!("case {case}"));
        let roots = events
            .iter()
            .filter(|e| e.name == "serve.request" && e.parent_id == 0)
            .count();
        assert_eq!(roots, n_requests, "case {case}: roots match requests");
    }

    trace::reset();
    obs::registry::reset();
    obs::event::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
